// E6 — Corollary 2: when every channel has capacity >= a·lg n, the lg n
// factor of Theorem 1 disappears and d <= (a/(a-1))·2·λ(M).
//
// Sweeps the slack parameter a on constant-capacity fat-trees and compares
// the reuse scheduler's cycle count against both λ and Theorem 1.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/load.hpp"
#include "core/reuse_scheduler.hpp"
#include "core/traffic.hpp"
#include "sim/experiment.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

int main() {
  ft::print_experiment_header(
      "E6", "Corollary 2: capacity slack removes the lg n factor",
      "cap(c) >= a lg n for all c  =>  d <= (a/(a-1)) 2 lambda(M), "
      "independent of n");

  for (const std::uint32_t n : {256u, 1024u}) {
    ft::FatTreeTopology topo(n);
    const std::uint32_t lgn = topo.height();
    ft::Rng rng(n);
    const auto m = ft::stacked_permutations(n, 12, rng);

    ft::Table table({"a", "cap = a lg n", "lambda", "reuse d", "thm1 d",
                     "reuse d/lambda", "(a/(a-1))*2", "repairs"});
    for (double a : {2.5, 3.0, 4.0, 6.0, 8.0}) {
      const auto cap = static_cast<std::uint64_t>(a * lgn);
      const auto caps = ft::CapacityProfile::constant(topo, cap);
      const double lambda = ft::load_factor(topo, caps, m);
      const auto reuse = ft::schedule_reuse(topo, caps, m);
      const auto thm1 = ft::schedule_offline(topo, caps, m);
      table.row()
          .add(a, 1)
          .add(cap)
          .add(lambda, 2)
          .add(reuse.schedule.num_cycles())
          .add(thm1.num_cycles())
          .add(static_cast<double>(reuse.schedule.num_cycles()) / lambda, 2)
          .add(a / (a - 1.0) * 2.0, 2)
          .add(reuse.repaired_messages);
    }
    table.print(std::cout,
                "n = " + std::to_string(n) + ", 12 stacked permutations");
    std::cout << '\n';
  }

  // n sweep at fixed a: d/λ must stay flat (no lg n growth).
  {
    ft::Table table({"n", "lg n", "lambda", "reuse d", "reuse d/lambda"});
    for (std::uint32_t lg = 6; lg <= 12; ++lg) {
      const std::uint32_t n = 1u << lg;
      ft::FatTreeTopology topo(n);
      const auto caps = ft::CapacityProfile::constant(topo, 4 * lg);
      ft::Rng rng(lg);
      const auto m = ft::stacked_permutations(n, 12, rng);
      const double lambda = ft::load_factor(topo, caps, m);
      const auto reuse = ft::schedule_reuse(topo, caps, m);
      table.row().add(n).add(lg).add(lambda, 2).add(
          reuse.schedule.num_cycles())
          .add(static_cast<double>(reuse.schedule.num_cycles()) / lambda, 2);
    }
    table.print(std::cout, "a = 4 fixed, n sweeping: d/lambda stays flat");
  }
  return 0;
}
