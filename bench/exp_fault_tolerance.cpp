// E14 — fault tolerance (Section VII lists it among the problems a real
// machine must solve; the same section claims fat-trees are a "robust
// engineering structure" whose exact capacities don't matter as long as
// growth is reasonable).
//
// Wire- and channel-failure injection: delivery cycles and load factor
// versus damage, off-line and on-line. The prediction: graceful
// degradation ~ 1/(1-p), no cliff, and correctness always.
#include <algorithm>
#include <iostream>

#include "core/faults.hpp"
#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/online_router.hpp"
#include "core/traffic.hpp"
#include "obs/run_report.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  ft::print_experiment_header(
      "E14", "fault tolerance (Section VII robustness)",
      "capacities need not be exact: wire failures degrade delivery "
      "cycles smoothly (~1/(1-p)), never correctness");

  const std::uint32_t n = 256;
  ft::FatTreeTopology topo(n);
  const auto caps = ft::CapacityProfile::universal(topo, 64);
  ft::Rng wrng(1);
  const auto m = ft::stacked_permutations(n, 4, wrng);

  ft::RunReport run_report("exp_fault_tolerance");
  {
    ft::JsonValue& params = run_report.params();
    params["n"] = n;
    params["w"] = 64;
    params["stacked_perms"] = 4;
  }
  ft::PhaseTimers timers;

  {
    auto phase = timers.scope("wire_failure_sweep");
    ft::Table table({"wire failure p", "wires surviving", "lambda",
                     "offline cycles", "vs healthy", "1/(1-p)",
                     "online cycles"});
    const auto base = ft::schedule_offline(topo, caps, m).num_cycles();
    for (double p : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5}) {
      ft::Rng frng(42);
      ft::FaultReport report;
      const auto degraded =
          ft::inject_wire_faults(topo, caps, p, frng, &report);
      const double lambda = ft::load_factor(topo, degraded, m);
      const auto s = ft::schedule_offline(topo, degraded, m);
      if (!ft::verify_schedule(topo, degraded, m, s)) {
        std::cout << "SCHEDULE INVALID UNDER FAULTS\n";
        return 1;
      }
      ft::Rng orng(43);
      const auto online = ft::route_online(topo, degraded, m, orng);
      table.row()
          .add(p, 2)
          .add(report.survival_rate(), 3)
          .add(lambda, 2)
          .add(s.num_cycles())
          .add(static_cast<double>(s.num_cycles()) /
                   static_cast<double>(base),
               2)
          .add(1.0 / (1.0 - std::min(p, 0.99)), 2)
          .add(static_cast<std::uint64_t>(online.delivery_cycles));

      ft::JsonValue& run =
          run_report.add_run("wire_failures/p=" + ft::format_double(p, 2));
      run["p"] = p;
      run["survival_rate"] = report.survival_rate();
      run["lambda"] = lambda;
      run["offline_cycles"] = static_cast<std::uint64_t>(s.num_cycles());
      run["vs_healthy"] = static_cast<double>(s.num_cycles()) /
                          static_cast<double>(base);
      run["online_cycles"] = online.delivery_cycles;
      run["online_gave_up"] = online.gave_up;
    }
    table.print(std::cout,
                "wire-failure sweep, n = 256, w = 64, 4 stacked perms");
    std::cout << "\nDegradation tracks 1/(1-p) until the 1-wire floors "
                 "dominate; every schedule\nstill verifies — the routing "
                 "theory is untouched by faults.\n\n";
  }

  {
    // Coarse model: whole channels dropping to one wire.
    auto phase = timers.scope("broken_cable_sweep");
    ft::Table table({"failed channels", "lambda", "offline cycles"});
    for (std::uint32_t count : {0u, 4u, 16u, 64u, 128u}) {
      ft::Rng frng(77);
      const auto degraded =
          ft::fail_random_channels(topo, caps, count, frng);
      const double lambda = ft::load_factor(topo, degraded, m);
      const auto s = ft::schedule_offline(topo, degraded, m);
      table.row().add(count).add(lambda, 2).add(s.num_cycles());

      ft::JsonValue& run =
          run_report.add_run("broken_cables/count=" + std::to_string(count));
      run["failed_channels"] = count;
      run["lambda"] = lambda;
      run["offline_cycles"] = static_cast<std::uint64_t>(s.num_cycles());
    }
    table.print(std::cout, "broken-cable sweep (channel drops to 1 wire)");
    std::cout << "\nA few broken cables barely register unless one of them "
                 "is a root channel —\nthe fattening concentrates risk "
                 "where the paper says to spend hardware.\n";
  }

  run_report.set_phases(timers);
  const char* path = "report_exp_fault_tolerance.json";
  if (run_report.write_file(path)) std::cout << "\nwrote " << path << '\n';
  return 0;
}
