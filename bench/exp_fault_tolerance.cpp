// E14 — fault tolerance (Section VII lists it among the problems a real
// machine must solve; the same section claims fat-trees are a "robust
// engineering structure" whose exact capacities don't matter as long as
// growth is reasonable).
//
// Three fault regimes:
//   1. Static wire failures injected before the run (capacity damage);
//      delivery cycles and load factor versus damage, off-line and
//      on-line. Prediction: graceful degradation ~ 1/(1-p), no cliff,
//      correctness always.
//   2. Static broken cables (whole channels dropped to one wire).
//   3. Transient churn: channels flap up and down *during* the run via a
//      FaultPlan, with per-message exponential backoff. Prediction:
//      delivery cycles stretch roughly like 1/availability — again no
//      cliff — and every message is still delivered.
//
// The transient sweep is self-checking (monotone degradation + no-cliff
// bound) and the experiment exits nonzero on violation, so CI can run it
// as a smoke test with --quick.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/faults.hpp"
#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/online_router.hpp"
#include "core/traffic.hpp"
#include "engine/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  ft::print_experiment_header(
      "E14", "fault tolerance (Section VII robustness)",
      "capacities need not be exact: static and transient faults degrade "
      "delivery cycles smoothly (~1/(1-p)), never correctness");

  const std::uint32_t n = quick ? 64 : 256;
  const std::uint32_t w = quick ? 16 : 64;
  const std::uint32_t perms = 4;
  ft::FatTreeTopology topo(n);
  const auto caps = ft::CapacityProfile::universal(topo, w);
  ft::Rng wrng(1);
  const auto m = ft::stacked_permutations(n, perms, wrng);

  ft::RunReport run_report("exp_fault_tolerance");
  {
    ft::JsonValue& params = run_report.params();
    params["n"] = n;
    params["w"] = w;
    params["stacked_perms"] = perms;
    params["quick"] = quick;
  }
  ft::PhaseTimers timers;

  {
    auto phase = timers.scope("wire_failure_sweep");
    ft::Table table({"wire failure p", "wires surviving", "lambda",
                     "offline cycles", "vs healthy", "1/(1-p)",
                     "online cycles"});
    const auto base = ft::schedule_offline(topo, caps, m).num_cycles();
    const std::vector<double> wire_ps =
        quick ? std::vector<double>{0.0, 0.1, 0.3}
              : std::vector<double>{0.0, 0.05, 0.1, 0.2, 0.3, 0.5};
    for (double p : wire_ps) {
      ft::Rng frng(42);
      ft::FaultReport report;
      const auto degraded =
          ft::inject_wire_faults(topo, caps, p, frng, &report);
      const double lambda = ft::load_factor(topo, degraded, m);
      const auto s = ft::schedule_offline(topo, degraded, m);
      if (!ft::verify_schedule(topo, degraded, m, s)) {
        std::cout << "SCHEDULE INVALID UNDER FAULTS\n";
        return 1;
      }
      ft::Rng orng(43);
      const auto online = ft::route_online(topo, degraded, m, orng);
      table.row()
          .add(p, 2)
          .add(report.survival_rate(), 3)
          .add(lambda, 2)
          .add(s.num_cycles())
          .add(static_cast<double>(s.num_cycles()) /
                   static_cast<double>(base),
               2)
          .add(1.0 / (1.0 - std::min(p, 0.99)), 2)
          .add(static_cast<std::uint64_t>(online.delivery_cycles));

      ft::JsonValue& run =
          run_report.add_run("wire_failures/p=" + ft::format_double(p, 2));
      run["p"] = p;
      run["survival_rate"] = report.survival_rate();
      run["lambda"] = lambda;
      run["offline_cycles"] = static_cast<std::uint64_t>(s.num_cycles());
      run["vs_healthy"] = static_cast<double>(s.num_cycles()) /
                          static_cast<double>(base);
      run["online_cycles"] = online.delivery_cycles;
      run["online_gave_up"] = online.gave_up;
    }
    table.print(std::cout, "wire-failure sweep, n = " + std::to_string(n) +
                               ", w = " + std::to_string(w) +
                               ", 4 stacked perms");
    std::cout << "\nDegradation tracks 1/(1-p) until the 1-wire floors "
                 "dominate; every schedule\nstill verifies — the routing "
                 "theory is untouched by faults.\n\n";
  }

  {
    // Coarse model: whole channels dropping to one wire.
    auto phase = timers.scope("broken_cable_sweep");
    ft::Table table({"failed channels", "lambda", "offline cycles"});
    const std::vector<std::uint32_t> counts =
        quick ? std::vector<std::uint32_t>{0u, 4u, 16u}
              : std::vector<std::uint32_t>{0u, 4u, 16u, 64u, 128u};
    for (std::uint32_t count : counts) {
      ft::Rng frng(77);
      const auto degraded =
          ft::fail_random_channels(topo, caps, count, frng);
      const double lambda = ft::load_factor(topo, degraded, m);
      const auto s = ft::schedule_offline(topo, degraded, m);
      table.row().add(count).add(lambda, 2).add(s.num_cycles());

      ft::JsonValue& run =
          run_report.add_run("broken_cables/count=" + std::to_string(count));
      run["failed_channels"] = count;
      run["lambda"] = lambda;
      run["offline_cycles"] = static_cast<std::uint64_t>(s.num_cycles());
    }
    table.print(std::cout, "broken-cable sweep (channel drops to 1 wire)");
    std::cout << "\nA few broken cables barely register unless one of them "
                 "is a root channel —\nthe fattening concentrates risk "
                 "where the paper says to spend hardware.\n";
  }

  // Transient churn: the FaultPlan flips channels down with probability p
  // per cycle and repairs them with probability 0.25; messages back off
  // exponentially after losses. Availability is measured by the engine
  // itself (degraded channel-cycles over usable channel-cycles).
  bool degradation_ok = true;
  {
    auto phase = timers.scope("transient_churn_sweep");
    ft::Table table({"flap p", "availability", "cycles", "vs healthy",
                     "1/avail", "backoffs", "down events", "delivered"});
    const std::vector<double> flap_ps =
        quick ? std::vector<double>{0.0, 0.02}
              : std::vector<double>{0.0, 0.005, 0.01, 0.02, 0.05};
    struct Point {
      double p = 0.0;
      double availability = 1.0;
      std::uint64_t cycles = 0;
    };
    std::vector<Point> points;
    std::uint64_t healthy_cycles = 0;
    for (double p : flap_ps) {
      ft::FaultPlan plan(/*seed=*/911);
      if (p > 0.0) plan.set_flaps({p, 0.25});

      ft::EngineMetrics metrics;
      ft::OnlineRouterOptions opts;
      opts.observer = &metrics;
      opts.retry.exponential_backoff = true;
      opts.retry.max_backoff = 8;
      if (!plan.empty()) opts.fault_plan = &plan;
      ft::Rng orng(17);
      const auto res = ft::route_online(topo, caps, m, orng, opts);
      if (res.gave_up || res.messages_given_up != 0) {
        std::cout << "TRANSIENT RUN LOST MESSAGES at p = " << p << "\n";
        return 1;
      }
      if (p == 0.0) healthy_cycles = res.delivery_cycles;
      const double avail = metrics.availability();
      points.push_back({p, avail, res.delivery_cycles});
      table.row()
          .add(p, 3)
          .add(avail, 4)
          .add(static_cast<std::uint64_t>(res.delivery_cycles))
          .add(static_cast<double>(res.delivery_cycles) /
                   static_cast<double>(healthy_cycles),
               2)
          .add(1.0 / std::max(avail, 1e-9), 2)
          .add(res.total_backoffs)
          .add(res.fault_down_events)
          .add(static_cast<std::uint64_t>(m.size()));

      ft::JsonValue& run = run_report.add_run(
          "transient_churn/p=" + ft::format_double(p, 3));
      run["flap_p"] = p;
      run["availability"] = avail;
      run["cycles"] = res.delivery_cycles;
      run["backoffs"] = res.total_backoffs;
      run["fault_down_events"] = res.fault_down_events;
      run["fault_up_events"] = res.fault_up_events;
      run["degraded_channel_cycles"] = res.degraded_channel_cycles;
      run["messages_given_up"] = res.messages_given_up;
    }
    table.print(std::cout,
                "transient-churn sweep (flap up-prob 0.25, exponential "
                "backoff, max nap 8)");

    // Self-check 1 (monotone with slack): more churn must not make runs
    // meaningfully faster. Randomized arbitration wobbles, so allow 15%.
    for (std::size_t i = 1; i < points.size(); ++i) {
      if (static_cast<double>(points[i].cycles) <
          0.85 * static_cast<double>(points[i - 1].cycles)) {
        std::cout << "DEGRADATION NOT MONOTONE: p=" << points[i].p
                  << " ran faster than p=" << points[i - 1].p << "\n";
        degradation_ok = false;
      }
    }
    // Self-check 2 (no cliff): a message needs its whole unique path —
    // up to 2·lg n channels — simultaneously up, so per-channel
    // availability a compounds to a^(2 lg n) along the path and the
    // expected stretch is its inverse. A cliff is blowing past that
    // compounded bound (with 4x slack for backoff naps and repair
    // latency), not merely exceeding 1/a.
    const double path_len = 2.0 * static_cast<double>(topo.height());
    for (const auto& pt : points) {
      const double path_avail =
          std::pow(std::max(pt.availability, 1e-9), path_len);
      const double bound = 4.0 * static_cast<double>(healthy_cycles) /
                           std::max(path_avail, 1e-9);
      if (static_cast<double>(pt.cycles) > bound) {
        std::cout << "DEGRADATION CLIFF: p=" << pt.p << " took "
                  << pt.cycles << " cycles (bound " << bound << ")\n";
        degradation_ok = false;
      }
    }
    std::cout << (degradation_ok
                      ? "\nChurn stretches runs smoothly (~1/availability) "
                        "and every message still\narrives — the robustness "
                        "claim survives mid-run failures too.\n"
                      : "\nDEGRADATION CHECKS FAILED\n");
  }

  run_report.set_phases(timers);
  const char* path = "report_exp_fault_tolerance.json";
  if (!run_report.write_file(path)) {
    std::cout << "\nFAILED TO WRITE " << path << '\n';
    return 1;
  }
  std::cout << "\nwrote " << path << '\n';

  // Round-trip the report so CI catches a malformed writer immediately.
  const auto parsed = ft::RunReport::read_file(path);
  if (!parsed.has_value()) {
    std::cout << "REPORT DID NOT PARSE BACK\n";
    return 1;
  }
  return degradation_ok ? 0 : 1;
}
