// E3 — Fig. 3 node structure and the Section IV partial concentrators.
//
// Measures the (r, 2r/3, 3/4) partial concentrator: the probability that
// k loaded inputs are all routed, as k sweeps through and past the
// α·s = (3/4)·s guarantee, plus cascade depths for fat-tree port ratios.
#include <algorithm>
#include <iostream>

#include "sim/experiment.hpp"
#include "switch/concentrator.hpp"
#include "util/table.hpp"

int main() {
  ft::print_experiment_header(
      "E3", "Fig. 3 concentrator switches (Section IV, Pippenger-style)",
      "random bipartite (r, 2r/3) graphs of in-degree 6 concentrate any "
      "k <= (3/4)s loaded inputs w.h.p.; constant-depth cascades give any "
      "constant ratio");

  {
    const std::size_t r = 96;
    const std::size_t s = 64;
    ft::Rng build_rng(1);
    ft::PartialConcentrator conc(r, s, build_rng);
    ft::Table table({"loaded inputs k", "k/s", "fully-routed rate",
                     "within alpha=3/4?"});
    ft::Rng trial_rng(2);
    for (std::size_t k : {8u, 16u, 24u, 32u, 40u, 48u, 52u, 56u, 60u, 64u}) {
      const double rate = conc.measure_full_routing_rate(k, 400, trial_rng);
      table.row()
          .add(k)
          .add(static_cast<double>(k) / static_cast<double>(s), 2)
          .add(rate, 3)
          .add(k <= 48 ? "yes" : "no");
    }
    table.print(std::cout, "(96, 64) partial concentrator, in-degree 6");
    std::cout << "Concentration holds essentially always up to k = (3/4)s "
                 "= 48 and degrades only\npast it — the paper's partial-"
                 "concentrator property.\n\n";
  }

  {
    ft::Table table({"inputs", "outputs", "cascade depth", "stage widths"});
    ft::Rng rng(3);
    for (auto [in, out] : {std::pair<std::size_t, std::size_t>{64, 32},
                           {64, 8},
                           {256, 16},
                           {1024, 64}}) {
      ft::ConcentratorCascade cascade(in, out, rng);
      std::string widths = std::to_string(in);
      std::size_t w = in;
      while (w > out) {
        w = std::max(out, (2 * w) / 3);
        widths += "->" + std::to_string(w);
      }
      table.row().add(in).add(out).add(cascade.depth()).add(widths);
    }
    table.print(std::cout, "cascades: constant ratio in logarithmic depth");
  }

  {
    // In-degree ablation: what the degree-6 choice buys.
    ft::Table table({"in-degree", "rate at k=s/2", "rate at k=3s/4"});
    for (std::size_t degree : {2u, 3u, 4u, 6u, 9u}) {
      ft::Rng rng(100 + degree);
      ft::PartialConcentrator conc(96, 64, rng, degree);
      ft::Rng trials(200 + degree);
      table.row()
          .add(degree)
          .add(conc.measure_full_routing_rate(32, 300, trials), 3)
          .add(conc.measure_full_routing_rate(48, 300, trials), 3);
    }
    table.print(std::cout, "ablation: expander in-degree vs concentration");
  }
  return 0;
}
