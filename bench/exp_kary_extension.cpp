// E13 — forward-looking extension: k-ary n-trees (the constant-radix
// folded-Clos realization of fat-trees used by modern interconnects),
// with an ablation of up-path selection policies.
#include <algorithm>
#include <iostream>

#include "kary/kary_sim.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  ft::print_experiment_header(
      "E13", "k-ary n-tree extension (Section VII outlook)",
      "constant-radix fat-trees route permutations with low congestion "
      "when ascent paths are spread (random/least-loaded) rather than "
      "deterministic");

  {
    ft::Table table({"k", "levels", "procs", "policy", "max link load",
                     "rounds", "rounds/hops"});
    struct Shape {
      std::uint32_t k, levels;
    };
    for (const auto shape : {Shape{2, 6}, Shape{4, 3}, Shape{8, 2}}) {
      ft::KaryTree tree(shape.k, shape.levels);
      ft::Rng perm_rng(shape.k * 10 + shape.levels);
      const auto perm = perm_rng.permutation(tree.num_processors());
      for (auto policy : {ft::AscentPolicy::DModK, ft::AscentPolicy::Random,
                          ft::AscentPolicy::LeastLoaded}) {
        const char* name = policy == ft::AscentPolicy::DModK ? "d-mod-k"
                           : policy == ft::AscentPolicy::Random
                               ? "random"
                               : "least-loaded";
        ft::Rng rng(99);
        const auto r = ft::simulate_kary_permutation(tree, perm, policy, rng);
        table.row()
            .add(shape.k)
            .add(shape.levels)
            .add(tree.num_processors())
            .add(name)
            .add(r.max_link_load)
            .add(static_cast<std::uint64_t>(r.rounds))
            .add(static_cast<double>(r.rounds) / r.max_route_hops, 2);
      }
    }
    table.print(std::cout, "random permutation across tree shapes "
                           "(64 processors each)");
    std::cout << '\n';
  }

  // Adversarial shift traffic: deterministic ascent funnels, spreading
  // policies flatten.
  {
    ft::KaryTree tree(4, 3);
    const std::uint32_t n = tree.num_processors();
    std::vector<std::uint32_t> shift(n);
    for (std::uint32_t p = 0; p < n; ++p) shift[p] = (p + n / 4) % n;
    ft::Table table({"policy", "max link load", "rounds"});
    for (auto policy : {ft::AscentPolicy::DModK, ft::AscentPolicy::Random,
                        ft::AscentPolicy::LeastLoaded}) {
      const char* name = policy == ft::AscentPolicy::DModK ? "d-mod-k"
                         : policy == ft::AscentPolicy::Random
                             ? "random"
                             : "least-loaded";
      ft::Rng rng(7);
      const auto r = ft::simulate_kary_permutation(tree, shift, policy, rng);
      table.row().add(name).add(r.max_link_load).add(
          static_cast<std::uint64_t>(r.rounds));
    }
    table.print(std::cout, "adversarial shift permutation, 4-ary 3-tree");
  }

  // Path diversity as a function of distance.
  {
    ft::KaryTree tree(4, 4);  // 256 processors
    ft::Table table({"nca level", "ascent hops", "distinct paths"});
    for (std::uint32_t nca = 0; nca < tree.levels(); ++nca) {
      // A destination whose digit string shares exactly `nca` digits.
      std::uint32_t dst = 0;
      for (std::uint32_t i = nca; i < tree.levels(); ++i) {
        dst += 1u << (2 * (tree.levels() - 1 - i));  // digit 1 at i
      }
      table.row()
          .add(nca)
          .add(tree.levels() - 1 > nca ? tree.levels() - 1 - nca : 0)
          .add(tree.path_diversity(0, dst));
    }
    table.print(std::cout, "path diversity on a 4-ary 4-tree");
  }
  return 0;
}
