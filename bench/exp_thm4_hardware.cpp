// E7 — Theorem 4 hardware cost and the paper's introduction claim that
// hypercube networks need ~n^{3/2} volume while fat-trees scale down.
//
// Components: total = Θ(n·lg(w³/n²)). Volume: closed form
// (w·(lg(n/w)+2))^{3/2} against the constructive node-box sum, against
// hypercube/mesh references.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/capacity.hpp"
#include "layout/vlsi_model.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  ft::print_experiment_header(
      "E7", "Theorem 4 hardware requirements",
      "universal fat-tree: O(n lg(w^3/n^2)) components, volume "
      "(w lg(n/w))^{3/2}; hypercubes are stuck at Theta(n^{3/2})");

  {
    ft::Table table({"n", "w", "components", "n lg(w^3/n^2)", "ratio"});
    for (std::uint32_t lg = 10; lg <= 14; lg += 2) {
      const std::uint32_t n = 1u << lg;
      ft::FatTreeTopology topo(n);
      for (std::uint64_t w :
           {std::uint64_t(std::ceil(std::pow(n, 2.0 / 3.0))),
            std::uint64_t(n) / 8, std::uint64_t(n)}) {
        const auto caps = ft::CapacityProfile::universal(topo, w);
        const double comps =
            static_cast<double>(ft::total_components(topo, caps));
        const double predicted =
            n * std::max(1.0, std::log2(std::pow(double(w), 3) /
                                        std::pow(double(n), 2)));
        table.row()
            .add(n)
            .add(w)
            .add(static_cast<std::uint64_t>(comps))
            .add(predicted, 0)
            .add(comps / predicted, 2);
      }
    }
    table.print(std::cout,
                "component count vs the Theorem 4 prediction (flat ratio)");
    std::cout << '\n';
  }

  {
    ft::Table table({"n", "w", "volume (closed form)", "constructive sum",
                     "ratio", "vol/hypercube", "vol/mesh"});
    for (std::uint32_t lg = 10; lg <= 14; lg += 2) {
      const std::uint32_t n = 1u << lg;
      ft::FatTreeTopology topo(n);
      for (std::uint64_t w :
           {std::uint64_t(std::ceil(std::pow(n, 2.0 / 3.0))),
            std::uint64_t(n) / 8, std::uint64_t(n)}) {
        const auto caps = ft::CapacityProfile::universal(topo, w);
        const double closed = ft::universal_fat_tree_volume(n, w);
        const double constructive = ft::constructive_volume(topo, caps);
        table.row()
            .add(n)
            .add(w)
            .add(closed, 0)
            .add(constructive, 0)
            .add(closed / constructive, 2)
            .add(closed / ft::hypercube_volume(n), 3)
            .add(closed / ft::mesh3d_volume(n), 2);
      }
    }
    table.print(std::cout, "volume: fat-trees scale from ~mesh cost (small "
                           "w) to ~hypercube cost (w = n)");
  }
  std::cout << "\nReading: at w = n^{2/3} the fat-tree costs a small "
               "multiple of a mesh; at w = n\nit matches the hypercube's "
               "n^{3/2} — one architecture spans the whole range\n(the "
               "paper's hardware-efficiency thesis).\n";
  return 0;
}
