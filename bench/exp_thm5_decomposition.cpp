// E8 — Theorem 5: any network occupying a cube of volume v has an
// (O(v^{2/3}), 4^{1/3}) decomposition tree, built by cutting planes.
//
// Builds actual 3-D layouts of several networks, runs the cutting-plane
// recursion, and reports the measured widths against the theorem's
// geometric envelope.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "layout/decomposition.hpp"
#include "nets/layouts.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

namespace {

void report(const char* name, const ft::Layout3D& layout) {
  const auto tree = ft::cut_plane_decomposition(layout);
  const double v23 = std::pow(layout.volume(), 2.0 / 3.0);
  ft::Table table({"depth i", "width w_i", "w_i/v^{2/3}",
                   "w_i/w_{i+3} (theory 4)"});
  const std::uint32_t show = std::min(tree.depth(), 9u);
  for (std::uint32_t d = 0; d <= show; ++d) {
    std::string ratio = "-";
    if (d + 3 <= tree.depth()) {
      ratio = ft::format_double(
          tree.width_at_depth(d) / tree.width_at_depth(d + 3), 2);
    }
    table.row()
        .add(d)
        .add(tree.width_at_depth(d), 1)
        .add(tree.width_at_depth(d) / v23, 3)
        .add(ratio);
  }
  table.print(std::cout, std::string(name) + ": volume " +
                             ft::format_double(layout.volume(), 0) +
                             ", decomposition depth " +
                             std::to_string(tree.depth()));
  std::cout << '\n';
}

}  // namespace

int main() {
  ft::print_experiment_header(
      "E8", "Theorem 5 decomposition trees by cutting planes",
      "a volume-v cube has an (O(v^{2/3}), cuberoot(4)) decomposition "
      "tree: widths start at ~6 v^{2/3} and shrink 4x per three cuts");

  report("3-D mesh 16x16x16 (volume n)", ft::layout_mesh3d(16, 16, 16));
  report("hypercube n=512 (volume n^{3/2})", ft::layout_hypercube(512));
  report("2-D mesh 32x32 (flat slab)", ft::layout_mesh2d(32, 32));
  report("binary tree n=256", ft::layout_binary_tree(256));

  std::cout << "Reading: the w_i/v^{2/3} column starts at the surface "
               "constant 6 and the\nw_i/w_{i+3} column sits at 4 for cube-"
               "ish regions — exactly the (6γv^{2/3}, ∛4)\ndecomposition "
               "tree of Theorem 5. Flat (2-D) layouts shrink even faster "
               "once cut\ndown to their slab thickness.\n";
  return 0;
}
