// E4 — Fig. 4 and Lemma 6 (the pearl-necklace partitioning argument).
//
// Over random necklaces of one or two strings, measures the split quality
// the lemma guarantees: both colors halve to within one, every side keeps
// at most two strings, and cut counts stay at two.
#include <algorithm>
#include <iostream>

#include "layout/pearls.hpp"
#include "sim/experiment.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  ft::print_experiment_header(
      "E4", "Fig. 4 / Lemma 6 pearl-necklace two-cut split",
      "two strings of pearls split with <= 2 cuts into two sets of <= 2 "
      "strings, each holding exactly half of each color (within one)");

  ft::Rng rng(42);
  ft::Table table({"pearls", "strings", "trials", "max |black diff|",
                   "max |size diff|", "max strings/side", "targets hit"});
  for (std::size_t len : {8u, 32u, 128u, 1024u, 8192u}) {
    for (int nstrings = 1; nstrings <= 2; ++nstrings) {
      std::uint64_t max_black_diff = 0, max_size_diff = 0, hits = 0;
      std::size_t max_side_strings = 0;
      const int trials = 200;
      for (int t = 0; t < trials; ++t) {
        std::vector<std::uint8_t> line(len);
        const double density = rng.uniform();
        for (auto& b : line) b = rng.chance(density) ? 1 : 0;
        const auto prefix = ft::black_prefix_sums(line);
        std::vector<ft::Segment> strings;
        if (nstrings == 1) {
          strings = {ft::Segment{0, len}};
        } else {
          const std::uint64_t cut = 1 + rng.below(len - 1);
          strings = {ft::Segment{0, cut}, ft::Segment{cut, len}};
        }
        const auto split = ft::split_pearls(strings, prefix);
        const std::uint64_t bd = split.blacks_a > split.blacks_b
                                     ? split.blacks_a - split.blacks_b
                                     : split.blacks_b - split.blacks_a;
        std::uint64_t pa = 0, pb = 0;
        for (const auto& s : split.side_a) pa += s.length();
        for (const auto& s : split.side_b) pb += s.length();
        const std::uint64_t sd = pa > pb ? pa - pb : pb - pa;
        max_black_diff = std::max(max_black_diff, bd);
        max_size_diff = std::max(max_size_diff, sd);
        max_side_strings = std::max(
            {max_side_strings, split.side_a.size(), split.side_b.size()});
        if (bd <= 1 && sd <= 1) ++hits;
      }
      table.row()
          .add(len)
          .add(nstrings)
          .add(trials)
          .add(max_black_diff)
          .add(max_size_diff)
          .add(max_side_strings)
          .add(std::to_string(hits) + "/" + std::to_string(trials));
    }
  }
  table.print(std::cout, "Lemma 6 over random necklaces");
  std::cout << "\nEvery row shows diffs <= 1 and <= 2 strings per side: the "
               "lemma's guarantee, at every scale.\n";
  return 0;
}
