// E2 — Fig. 2 bit-serial message format and the Section II claim that a
// delivery cycle takes O(lg n) time.
//
// Measures, per machine size: address-word lengths (<= 2 lg n), the
// bit-time makespan of a delivery cycle for local vs root-crossing
// traffic, and the scaling of cycle time with n.
#include <algorithm>
#include <iostream>

#include "core/traffic.hpp"
#include "sim/experiment.hpp"
#include "switch/bitserial.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

int main() {
  ft::print_experiment_header(
      "E2", "Fig. 2 bit-serial protocol + Section II delivery-cycle timing",
      "address <= 2 lg n bits stripped one per node; a delivery cycle "
      "completes in O(lg n + message length) bit-times");

  ft::Table table({"n", "lg n", "addr bits (max)", "cycle bits (local)",
                   "cycle bits (complement)", "cycle bits (random perm)",
                   "(cycle - payload)/lg n"});
  for (std::uint32_t lg = 4; lg <= 14; lg += 2) {
    const std::uint32_t n = 1u << lg;
    ft::FatTreeTopology topo(n);
    const auto caps = ft::CapacityProfile::doubling(topo);
    ft::BitSerialOptions opts;
    opts.payload_bits = 32;
    ft::BitSerialSimulator sim(topo, caps, opts);

    ft::MessageSet local;
    for (ft::Leaf p = 0; p < n; p += 2) local.push_back({p, p + 1});
    const auto r_local = sim.run_cycle(local);
    const auto r_comp = sim.run_cycle(ft::complement_traffic(n));
    ft::Rng rng(lg);
    const auto r_perm = sim.run_cycle(ft::random_permutation_traffic(n, rng));

    table.row()
        .add(n)
        .add(lg)
        .add(sim.address_bits(0, n - 1))
        .add(static_cast<std::uint64_t>(r_local.makespan_bits))
        .add(static_cast<std::uint64_t>(r_comp.makespan_bits))
        .add(static_cast<std::uint64_t>(r_perm.makespan_bits))
        .add(static_cast<double>(r_comp.makespan_bits - opts.payload_bits) /
                 lg,
             2);
  }
  table.print(std::cout, "delivery-cycle bit timing (payload = 32 bits)");
  std::cout << "\nThe final column is flat: cycle time grows as Θ(lg n) on "
               "top of the fixed payload,\nand local traffic finishes "
               "earlier because its paths turn low in the tree\n(the "
               "telephone-exchange effect the paper describes).\n";
  return 0;
}
