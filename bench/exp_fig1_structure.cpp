// E1 — Fig. 1 and the Section IV capacity definition.
//
// Regenerates the structural table of universal fat-trees: per-level
// channel capacities, showing the doubling regime near the leaves, the
// 4^{1/3}-growth regime near the root, and the regime breakpoint at level
// 3·lg(n/w).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/capacity.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  ft::print_experiment_header(
      "E1", "Fig. 1 + universal fat-tree definition (Section IV)",
      "cap(level k) = min(2^{L-k}, w/2^{2k/3}); doubling near leaves, "
      "4^{1/3} growth near root, breakpoint at 3 lg(n/w)");

  {
    const std::uint32_t n = 4096;
    ft::FatTreeTopology topo(n);
    ft::Table table({"level k", "channels", "cap (w=256)", "growth",
                     "cap (w=1024)", "growth", "cap (w=4096)", "growth"});
    const auto c256 = ft::CapacityProfile::universal(topo, 256);
    const auto c1k = ft::CapacityProfile::universal(topo, 1024);
    const auto c4k = ft::CapacityProfile::universal(topo, 4096);
    for (std::uint32_t k = 0; k <= topo.height(); ++k) {
      auto growth = [&](const ft::CapacityProfile& c) -> std::string {
        if (k == topo.height()) return "-";
        return ft::format_double(
            static_cast<double>(c.capacity_at_level(k)) /
                static_cast<double>(c.capacity_at_level(k + 1)),
            2);
      };
      table.row()
          .add(k)
          .add(std::uint64_t{1} << k)
          .add(c256.capacity_at_level(k))
          .add(growth(c256))
          .add(c1k.capacity_at_level(k))
          .add(growth(c1k))
          .add(c4k.capacity_at_level(k))
          .add(growth(c4k));
    }
    table.print(std::cout, "capacity profiles, n = 4096");
    std::cout << "breakpoints 3 lg(n/w): w=256 -> level 12 (all doubling), "
                 "w=1024 -> level 6, w=4096 -> level 0 (all 4^{1/3})\n";
  }

  {
    ft::Table table(
        {"n", "w", "total wires", "wires/skinny-tree", "root share"});
    for (std::uint32_t lg = 8; lg <= 14; lg += 2) {
      const std::uint32_t n = 1u << lg;
      ft::FatTreeTopology topo(n);
      for (std::uint64_t w : {std::uint64_t(std::pow(n, 2.0 / 3.0)),
                              std::uint64_t(n) / 4, std::uint64_t(n)}) {
        const auto caps = ft::CapacityProfile::universal(topo, w);
        const auto wires = caps.total_wires(topo);
        table.row()
            .add(n)
            .add(w)
            .add(wires)
            .add(static_cast<double>(wires) /
                     static_cast<double>(2 * (2 * n - 1)),
                 2)
            .add(static_cast<double>(2 * caps.root_capacity()) /
                     static_cast<double>(wires),
                 4);
      }
    }
    table.print(std::cout, "hardware (wire count) vs root capacity");
  }
  return 0;
}
