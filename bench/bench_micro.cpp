// Microbenchmarks (google-benchmark): throughput of the inner kernels —
// LCA/path iteration, load computation, the matching+tracing even split,
// whole-schedule construction, Hopcroft–Karp concentrator routing, and
// the cutting-plane decomposition. After the registered benchmarks run,
// main() times the delivery-cycle engine serial vs parallel and writes the
// machine-readable BENCH_engine.json consumed by perf tracking.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <utility>
#include <vector>

#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/traffic.hpp"
#include "engine/engine.hpp"
#include "engine/fat_tree_model.hpp"
#include "layout/balanced.hpp"
#include "layout/decomposition.hpp"
#include "nets/layouts.hpp"
#include "obs/json.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "switch/concentrator.hpp"
#include "util/prng.hpp"

// ---------------------------------------------------------------------------
// Heap-allocation counter, bench binary only: the engine promises O(1)
// amortized allocations per delivery cycle once its scratch reaches steady
// state, and the engine bench below reports the measured rate. Plain (and
// array / nothrow) operator new is replaced with a counting malloc
// passthrough; the over-aligned variants are left alone — the engine's
// scratch is std::vector of fundamental types, which never takes that
// path — so default aligned new still pairs with default aligned delete.

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
std::uint64_t heap_alloc_count() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}
void* counted_alloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
}  // namespace

// GCC's -Wmismatched-new-delete pairs new-expressions with the free()
// inside these deletes without seeing that the replaced operator new is a
// malloc passthrough, so the pairing is in fact correct.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

namespace {

void BM_LcaAndPath(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  ft::FatTreeTopology topo(n);
  ft::Rng rng(1);
  const auto m = ft::random_permutation_traffic(n, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& msg = m[i++ % m.size()];
    std::uint32_t sum = 0;
    topo.for_each_channel_on_path(msg.src, msg.dst,
                                  [&](ft::ChannelId c) { sum += c.node; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LcaAndPath)->Arg(256)->Arg(4096)->Arg(65536);

void BM_ComputeLoads(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  ft::FatTreeTopology topo(n);
  ft::Rng rng(2);
  const auto m = ft::stacked_permutations(n, 4, rng);
  for (auto _ : state) {
    auto loads = ft::compute_loads(topo, m);
    benchmark::DoNotOptimize(loads.up.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.size()));
}
BENCHMARK(BM_ComputeLoads)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EvenSplit(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  ft::FatTreeTopology topo(n);
  ft::Rng rng(3);
  ft::MessageSet crossing;
  for (std::uint32_t i = 0; i < n; ++i) {
    crossing.push_back(
        {static_cast<ft::Leaf>(rng.below(n / 2)),
         static_cast<ft::Leaf>(n / 2 + rng.below(n / 2))});
  }
  for (auto _ : state) {
    auto split = ft::split_crossing_messages(topo, 1, crossing);
    benchmark::DoNotOptimize(split.first.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(crossing.size()));
}
BENCHMARK(BM_EvenSplit)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ScheduleOffline(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  ft::FatTreeTopology topo(n);
  const auto caps = ft::CapacityProfile::universal(topo, n / 4);
  ft::Rng rng(4);
  const auto m = ft::stacked_permutations(n, 4, rng);
  for (auto _ : state) {
    auto s = ft::schedule_offline(topo, caps, m);
    benchmark::DoNotOptimize(s.cycles.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.size()));
}
BENCHMARK(BM_ScheduleOffline)->Arg(256)->Arg(1024);

void BM_ConcentratorRoute(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  ft::Rng rng(5);
  ft::PartialConcentrator conc(96, 64, rng);
  std::vector<std::uint32_t> active;
  ft::Rng pick(6);
  std::vector<std::uint32_t> pool(96);
  for (std::uint32_t i = 0; i < 96; ++i) pool[i] = i;
  pick.shuffle(pool);
  active.assign(pool.begin(), pool.begin() + static_cast<long>(k));
  for (auto _ : state) {
    auto out = conc.route(active);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(k));
}
BENCHMARK(BM_ConcentratorRoute)->Arg(8)->Arg(32)->Arg(48);

void BM_Decomposition(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto layout = ft::layout_hypercube(n);
  for (auto _ : state) {
    auto tree = ft::cut_plane_decomposition(layout);
    benchmark::DoNotOptimize(tree.depth());
  }
}
BENCHMARK(BM_Decomposition)->Arg(64)->Arg(256);

void BM_BalancedDecomposition(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto layout = ft::layout_hypercube(n);
  const auto tree = ft::cut_plane_decomposition(layout);
  for (auto _ : state) {
    ft::BalancedDecomposition balanced(tree);
    benchmark::DoNotOptimize(balanced.processor_order().data());
  }
}
BENCHMARK(BM_BalancedDecomposition)->Arg(64)->Arg(256);

void BM_EngineDeliveryCycles(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const bool parallel = state.range(1) != 0;
  ft::FatTreeTopology topo(n);
  const auto caps = ft::CapacityProfile::universal(topo, n / 4);
  ft::Rng gen(9000);
  const auto m = ft::stacked_permutations(n, 4, gen);
  const auto paths = ft::fat_tree_path_set(topo, m);
  ft::EngineOptions opts;
  opts.seed = 42;
  opts.parallel = parallel;
  ft::CycleEngine engine(ft::fat_tree_channel_graph(topo, caps), opts);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    cycles += engine.run(paths).cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_EngineDeliveryCycles)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({4096, 0})
    ->Args({4096, 1});

// ---------------------------------------------------------------------------
// BENCH_engine.json: delivery-cycle throughput of the unified engine,
// serial vs parallel, across tree sizes. Hand-rolled timing (warmup +
// min-of-N interleaved repetitions) so the output is a small stable JSON
// file rather than benchmark's full reporter format.

struct EngineBenchRow {
  std::uint32_t n = 0;
  const char* mode = "";
  std::uint64_t cycles = 0;
  double seconds = 0.0;
  double cycles_per_sec = 0.0;
  double allocs_per_cycle = 0.0;
};

/// Warmup runs before timing starts: they grow the engine's member
/// scratch to steady state, so the measured repetitions see both the
/// warmed caches and the amortized allocation behavior.
constexpr int kEngineWarmupReps = 3;
/// Timed repetitions per mode; the row keeps the fastest (min-of-N).
constexpr int kEngineMeasuredReps = 15;

/// Pre-rewrite engine throughput on this host (commit daff695, the
/// staged per-stage scan loop), written into the report's "baseline"
/// section so the speedup survives regeneration of the file.
constexpr struct {
  const char* name;
  double cycles_per_sec;
} kEngineBaseline[] = {
    {"engine_cycles/n=256/serial", 15447.733238243953},
    {"engine_cycles/n=256/parallel", 14269.406392694065},
    {"engine_cycles/n=1024/serial", 3297.476238513051},
    {"engine_cycles/n=1024/parallel", 3106.4316037837293},
    {"engine_cycles/n=4096/serial", 571.4370069272451},
    {"engine_cycles/n=4096/parallel", 592.3839856690466},
    {"engine_cycles/n=16384/serial", 90.02836909660995},
    {"engine_cycles/n=16384/parallel", 90.81813890189336},
};

/// Times serial and parallel mode on one workload with interleaved
/// repetitions (min of kEngineMeasuredReps each), so both modes sample
/// the same machine noise and the serial/parallel ratio is stable even
/// on a busy host. Uses the engine's native PathSet entry point; the
/// message-set-to-CSR conversion happens once, outside the timed region.
std::pair<EngineBenchRow, EngineBenchRow> time_engine(std::uint32_t n) {
  ft::FatTreeTopology topo(n);
  const auto caps = ft::CapacityProfile::universal(topo, n / 4);
  ft::Rng gen(9000 + n);
  const auto m = ft::stacked_permutations(n, 4, gen);
  const auto paths = ft::fat_tree_path_set(topo, m);
  const auto graph = ft::fat_tree_channel_graph(topo, caps);

  ft::EngineOptions serial_opts;
  serial_opts.seed = 42;
  ft::EngineOptions parallel_opts = serial_opts;
  parallel_opts.parallel = true;
  ft::CycleEngine serial_engine(graph, serial_opts);
  ft::CycleEngine parallel_engine(graph, parallel_opts);

  EngineBenchRow serial{n, "serial", 0, 1e300, 0.0, 0.0};
  EngineBenchRow parallel{n, "parallel", 0, 1e300, 0.0, 0.0};
  std::uint64_t total_cycles[2] = {0, 0};
  std::uint64_t total_allocs[2] = {0, 0};
  const auto measure = [&](ft::CycleEngine& engine, EngineBenchRow& row,
                           int which) {
    const std::uint64_t a0 = heap_alloc_count();
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = engine.run(paths);
    const auto t1 = std::chrono::steady_clock::now();
    row.cycles = r.cycles;
    row.seconds =
        std::min(row.seconds, std::chrono::duration<double>(t1 - t0).count());
    total_cycles[which] += r.cycles;
    total_allocs[which] += heap_alloc_count() - a0;
  };
  for (int rep = 0; rep < kEngineWarmupReps; ++rep) {
    (void)serial_engine.run(paths);
    (void)parallel_engine.run(paths);
  }
  for (int rep = 0; rep < kEngineMeasuredReps; ++rep) {
    measure(serial_engine, serial, 0);
    measure(parallel_engine, parallel, 1);
  }
  serial.cycles_per_sec =
      static_cast<double>(serial.cycles) / serial.seconds;
  parallel.cycles_per_sec =
      static_cast<double>(parallel.cycles) / parallel.seconds;
  serial.allocs_per_cycle = static_cast<double>(total_allocs[0]) /
                            static_cast<double>(total_cycles[0]);
  parallel.allocs_per_cycle = static_cast<double>(total_allocs[1]) /
                              static_cast<double>(total_cycles[1]);
  return {serial, parallel};
}

/// Telemetry-overhead measurement at n = 2^16: serial engine throughput
/// bare vs with a default-sampling TelemetryProbe attached (every_k = 1,
/// latency digests on). Interleaved min-of-N like time_engine; fewer
/// repetitions because one n = 65536 run is ~0.5 s. The acceptance target
/// is <= 5% cycles/s regression with telemetry on; the ratio is recorded
/// here (and compared by scripts/bench_compare.py run to run) rather than
/// gated, since shared runners are too noisy for a hard in-binary gate.
std::pair<EngineBenchRow, EngineBenchRow> time_engine_telemetry(
    std::uint32_t n, int reps) {
  ft::FatTreeTopology topo(n);
  const auto caps = ft::CapacityProfile::universal(topo, n / 4);
  ft::Rng gen(9000 + n);
  const auto m = ft::stacked_permutations(n, 4, gen);
  const auto paths = ft::fat_tree_path_set(topo, m);
  const auto graph = ft::fat_tree_channel_graph(topo, caps);

  ft::EngineOptions opts;
  opts.seed = 42;
  ft::CycleEngine engine(graph, opts);
  ft::TelemetryProbe probe;

  EngineBenchRow bare{n, "serial", 0, 1e300, 0.0, 0.0};
  EngineBenchRow telem{n, "serial+telemetry", 0, 1e300, 0.0, 0.0};
  const auto measure = [&](EngineBenchRow& row, ft::EngineObserver* obs) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = engine.run(paths, obs);
    const auto t1 = std::chrono::steady_clock::now();
    row.cycles = r.cycles;
    row.seconds =
        std::min(row.seconds, std::chrono::duration<double>(t1 - t0).count());
  };
  (void)engine.run(paths);
  (void)engine.run(paths, &probe);
  probe.reset();
  for (int rep = 0; rep < reps; ++rep) {
    measure(bare, nullptr);
    probe.reset();  // fresh rings per rep; reset cost is outside the timer
    measure(telem, &probe);
  }
  bare.cycles_per_sec = static_cast<double>(bare.cycles) / bare.seconds;
  telem.cycles_per_sec = static_cast<double>(telem.cycles) / telem.seconds;
  return {bare, telem};
}

/// Parallel thread-scaling rows: the sharded parallel engine at a fixed
/// thread count, with phase timing on, so BENCH_engine.json tracks the
/// measured Amdahl serial fraction (spine + coordination over total)
/// across PRs at every thread count — not just end-to-end cycles/s at
/// hardware concurrency. The graph is sharded the way route_online would
/// shard it for `threads` workers (~2 shards per worker), so the row
/// measures the production executor, parallel spine included.
struct ThreadBenchRow {
  std::uint32_t n = 0;
  std::size_t threads = 0;
  std::uint64_t cycles = 0;
  double seconds = 0.0;
  double cycles_per_sec = 0.0;
  double spine_serial_fraction = 0.0;
};

ThreadBenchRow time_engine_threads(std::uint32_t n, std::size_t threads,
                                   int reps) {
  ft::FatTreeTopology topo(n);
  const auto caps = ft::CapacityProfile::universal(topo, n / 4);
  ft::Rng gen(9000 + n);
  const auto m = ft::stacked_permutations(n, 4, gen);
  const auto paths = ft::fat_tree_path_set(topo, m);
  std::uint32_t lvl = 1;
  while ((std::size_t{1} << lvl) < threads * 2 && lvl < 6) ++lvl;
  lvl = std::min(lvl, topo.height() - 1);
  const auto graph = ft::fat_tree_channel_graph(topo, caps, lvl);

  ft::EngineOptions opts;
  opts.seed = 42;
  opts.parallel = true;
  opts.threads = threads;
  opts.time_phases = true;
  ft::CycleEngine engine(graph, opts);

  ThreadBenchRow row;
  row.n = n;
  row.threads = threads;
  row.seconds = 1e300;
  (void)engine.run(paths);  // warmup: scratch to steady state
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = engine.run(paths);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    row.cycles = r.cycles;
    if (secs < row.seconds) {
      row.seconds = secs;
      row.spine_serial_fraction = r.phases.serial_fraction();
    }
  }
  row.cycles_per_sec = static_cast<double>(row.cycles) / row.seconds;
  return row;
}

void write_engine_bench(const char* path) {
  ft::JsonValue doc = ft::JsonValue::object();
  doc["schema"] = "ft.bench_engine/2";
  doc["git_sha"] = ft::build_git_sha();
  doc["timestamp"] = ft::timestamp_utc_iso8601();
  ft::JsonValue& host = doc["host"];
  host = ft::JsonValue::object();
  host["hardware_threads"] = ft::host_hardware_threads();
  ft::JsonValue& benchmarks = doc["benchmarks"];
  benchmarks = ft::JsonValue::array();
  for (const std::uint32_t n : {256u, 1024u, 4096u, 16384u}) {
    const auto [serial, parallel] = time_engine(n);
    for (const EngineBenchRow& row : {serial, parallel}) {
      ft::JsonValue entry = ft::JsonValue::object();
      entry["name"] = "engine_cycles/n=" + std::to_string(row.n) + "/" +
                      row.mode;
      entry["n"] = row.n;
      entry["mode"] = row.mode;
      entry["cycles"] = row.cycles;
      entry["seconds"] = row.seconds;
      entry["cycles_per_sec"] = row.cycles_per_sec;
      entry["reps"] = kEngineMeasuredReps;
      entry["warmup_reps"] = kEngineWarmupReps;
      entry["allocs_per_cycle"] = row.allocs_per_cycle;
      benchmarks.push_back(std::move(entry));
      std::cout << "engine n=" << row.n << " " << row.mode << ": "
                << row.cycles_per_sec << " cycles/sec, "
                << row.allocs_per_cycle << " allocs/cycle\n";
    }
  }
  // Thread-scaling rows at {2, 4, hw} threads (deduplicated): the
  // sharded executor with the parallel spine, phase-timed, so the
  // spine_serial_fraction trajectory is tracked per thread count.
  {
    std::vector<std::size_t> sweep{2, 4};
    const std::size_t hw =
        std::max<std::size_t>(1, ft::host_hardware_threads());
    if (std::find(sweep.begin(), sweep.end(), hw) == sweep.end()) {
      sweep.push_back(hw);
    }
    std::sort(sweep.begin(), sweep.end());
    for (const std::uint32_t n : {4096u, 16384u}) {
      for (const std::size_t t : sweep) {
        const ThreadBenchRow row = time_engine_threads(n, t, /*reps=*/7);
        ft::JsonValue entry = ft::JsonValue::object();
        entry["name"] = "engine_cycles/n=" + std::to_string(row.n) +
                        "/parallel/t=" + std::to_string(row.threads);
        entry["n"] = row.n;
        entry["mode"] = "parallel/t=" + std::to_string(row.threads);
        entry["threads"] = static_cast<std::uint64_t>(row.threads);
        entry["cycles"] = row.cycles;
        entry["seconds"] = row.seconds;
        entry["cycles_per_sec"] = row.cycles_per_sec;
        entry["spine_serial_fraction"] = row.spine_serial_fraction;
        entry["reps"] = 7;
        entry["warmup_reps"] = 1;
        benchmarks.push_back(std::move(entry));
        std::cout << "engine n=" << row.n << " parallel/t=" << row.threads
                  << ": " << row.cycles_per_sec
                  << " cycles/sec, spine serial fraction "
                  << row.spine_serial_fraction << "\n";
      }
    }
  }

  // Telemetry overhead at n = 2^16 (default sampling): the two rows plus
  // the ratio land in the report so the <= 5% regression target is
  // tracked release to release.
  {
    const auto [bare, telem] = time_engine_telemetry(65536, /*reps=*/7);
    for (const EngineBenchRow& row : {bare, telem}) {
      ft::JsonValue entry = ft::JsonValue::object();
      entry["name"] = "engine_cycles/n=" + std::to_string(row.n) + "/" +
                      row.mode;
      entry["n"] = row.n;
      entry["mode"] = row.mode;
      entry["cycles"] = row.cycles;
      entry["seconds"] = row.seconds;
      entry["cycles_per_sec"] = row.cycles_per_sec;
      entry["reps"] = 7;
      entry["warmup_reps"] = 1;
      benchmarks.push_back(std::move(entry));
      std::cout << "engine n=" << row.n << " " << row.mode << ": "
                << row.cycles_per_sec << " cycles/sec\n";
    }
    const double overhead =
        bare.cycles_per_sec > 0.0
            ? 1.0 - telem.cycles_per_sec / bare.cycles_per_sec
            : 0.0;
    doc["telemetry_overhead"] = ft::JsonValue::object();
    doc["telemetry_overhead"]["n"] = 65536;
    doc["telemetry_overhead"]["relative_slowdown"] = overhead;
    doc["telemetry_overhead"]["target"] = 0.05;
    std::cout << "telemetry overhead at n=65536: "
              << overhead * 100.0 << "% (target <= 5%)\n";
  }

  // Sampled after the benchmark loop so it covers the largest workload;
  // comparisons across hosts should also check host.hardware_threads
  // (scripts/bench_compare.py warns on a mismatch). Re-indexed through
  // doc: the earlier `host` reference is invalidated by key insertions.
  doc["host"]["peak_rss_bytes"] = ft::host_peak_rss_bytes();
  ft::JsonValue& baseline = doc["baseline"];
  baseline = ft::JsonValue::object();
  baseline["git_sha"] = "daff69516052";
  baseline["note"] =
      "pre-rewrite engine (per-stage scan loop) on the same host";
  ft::JsonValue& baseline_rows = baseline["benchmarks"];
  baseline_rows = ft::JsonValue::array();
  for (const auto& b : kEngineBaseline) {
    ft::JsonValue entry = ft::JsonValue::object();
    entry["name"] = b.name;
    entry["cycles_per_sec"] = b.cycles_per_sec;
    baseline_rows.push_back(std::move(entry));
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return;
  }
  doc.write(out, 2);
  out << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_engine_bench("BENCH_engine.json");
  std::cout << "wrote BENCH_engine.json\n";
  return 0;
}
