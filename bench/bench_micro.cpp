// Microbenchmarks (google-benchmark): throughput of the inner kernels —
// LCA/path iteration, load computation, the matching+tracing even split,
// whole-schedule construction, Hopcroft–Karp concentrator routing, and
// the cutting-plane decomposition.
#include <benchmark/benchmark.h>

#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/traffic.hpp"
#include "layout/balanced.hpp"
#include "layout/decomposition.hpp"
#include "nets/layouts.hpp"
#include "switch/concentrator.hpp"
#include "util/prng.hpp"

namespace {

void BM_LcaAndPath(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  ft::FatTreeTopology topo(n);
  ft::Rng rng(1);
  const auto m = ft::random_permutation_traffic(n, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& msg = m[i++ % m.size()];
    std::uint32_t sum = 0;
    topo.for_each_channel_on_path(msg.src, msg.dst,
                                  [&](ft::ChannelId c) { sum += c.node; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LcaAndPath)->Arg(256)->Arg(4096)->Arg(65536);

void BM_ComputeLoads(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  ft::FatTreeTopology topo(n);
  ft::Rng rng(2);
  const auto m = ft::stacked_permutations(n, 4, rng);
  for (auto _ : state) {
    auto loads = ft::compute_loads(topo, m);
    benchmark::DoNotOptimize(loads.up.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.size()));
}
BENCHMARK(BM_ComputeLoads)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EvenSplit(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  ft::FatTreeTopology topo(n);
  ft::Rng rng(3);
  ft::MessageSet crossing;
  for (std::uint32_t i = 0; i < n; ++i) {
    crossing.push_back(
        {static_cast<ft::Leaf>(rng.below(n / 2)),
         static_cast<ft::Leaf>(n / 2 + rng.below(n / 2))});
  }
  for (auto _ : state) {
    auto split = ft::split_crossing_messages(topo, 1, crossing);
    benchmark::DoNotOptimize(split.first.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(crossing.size()));
}
BENCHMARK(BM_EvenSplit)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ScheduleOffline(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  ft::FatTreeTopology topo(n);
  const auto caps = ft::CapacityProfile::universal(topo, n / 4);
  ft::Rng rng(4);
  const auto m = ft::stacked_permutations(n, 4, rng);
  for (auto _ : state) {
    auto s = ft::schedule_offline(topo, caps, m);
    benchmark::DoNotOptimize(s.cycles.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.size()));
}
BENCHMARK(BM_ScheduleOffline)->Arg(256)->Arg(1024);

void BM_ConcentratorRoute(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  ft::Rng rng(5);
  ft::PartialConcentrator conc(96, 64, rng);
  std::vector<std::uint32_t> active;
  ft::Rng pick(6);
  std::vector<std::uint32_t> pool(96);
  for (std::uint32_t i = 0; i < 96; ++i) pool[i] = i;
  pick.shuffle(pool);
  active.assign(pool.begin(), pool.begin() + static_cast<long>(k));
  for (auto _ : state) {
    auto out = conc.route(active);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(k));
}
BENCHMARK(BM_ConcentratorRoute)->Arg(8)->Arg(32)->Arg(48);

void BM_Decomposition(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto layout = ft::layout_hypercube(n);
  for (auto _ : state) {
    auto tree = ft::cut_plane_decomposition(layout);
    benchmark::DoNotOptimize(tree.depth());
  }
}
BENCHMARK(BM_Decomposition)->Arg(64)->Arg(256);

void BM_BalancedDecomposition(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto layout = ft::layout_hypercube(n);
  const auto tree = ft::cut_plane_decomposition(layout);
  for (auto _ : state) {
    ft::BalancedDecomposition balanced(tree);
    benchmark::DoNotOptimize(balanced.processor_order().data());
  }
}
BENCHMARK(BM_BalancedDecomposition)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
