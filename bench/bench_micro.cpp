// Microbenchmarks (google-benchmark): throughput of the inner kernels —
// LCA/path iteration, load computation, the matching+tracing even split,
// whole-schedule construction, Hopcroft–Karp concentrator routing, and
// the cutting-plane decomposition. After the registered benchmarks run,
// main() times the delivery-cycle engine serial vs parallel and writes the
// machine-readable BENCH_engine.json consumed by perf tracking.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <utility>

#include "core/load.hpp"
#include "core/offline_scheduler.hpp"
#include "core/traffic.hpp"
#include "engine/engine.hpp"
#include "engine/fat_tree_model.hpp"
#include "layout/balanced.hpp"
#include "layout/decomposition.hpp"
#include "nets/layouts.hpp"
#include "obs/json.hpp"
#include "obs/run_report.hpp"
#include "switch/concentrator.hpp"
#include "util/prng.hpp"

namespace {

void BM_LcaAndPath(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  ft::FatTreeTopology topo(n);
  ft::Rng rng(1);
  const auto m = ft::random_permutation_traffic(n, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& msg = m[i++ % m.size()];
    std::uint32_t sum = 0;
    topo.for_each_channel_on_path(msg.src, msg.dst,
                                  [&](ft::ChannelId c) { sum += c.node; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LcaAndPath)->Arg(256)->Arg(4096)->Arg(65536);

void BM_ComputeLoads(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  ft::FatTreeTopology topo(n);
  ft::Rng rng(2);
  const auto m = ft::stacked_permutations(n, 4, rng);
  for (auto _ : state) {
    auto loads = ft::compute_loads(topo, m);
    benchmark::DoNotOptimize(loads.up.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.size()));
}
BENCHMARK(BM_ComputeLoads)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EvenSplit(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  ft::FatTreeTopology topo(n);
  ft::Rng rng(3);
  ft::MessageSet crossing;
  for (std::uint32_t i = 0; i < n; ++i) {
    crossing.push_back(
        {static_cast<ft::Leaf>(rng.below(n / 2)),
         static_cast<ft::Leaf>(n / 2 + rng.below(n / 2))});
  }
  for (auto _ : state) {
    auto split = ft::split_crossing_messages(topo, 1, crossing);
    benchmark::DoNotOptimize(split.first.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(crossing.size()));
}
BENCHMARK(BM_EvenSplit)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ScheduleOffline(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  ft::FatTreeTopology topo(n);
  const auto caps = ft::CapacityProfile::universal(topo, n / 4);
  ft::Rng rng(4);
  const auto m = ft::stacked_permutations(n, 4, rng);
  for (auto _ : state) {
    auto s = ft::schedule_offline(topo, caps, m);
    benchmark::DoNotOptimize(s.cycles.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.size()));
}
BENCHMARK(BM_ScheduleOffline)->Arg(256)->Arg(1024);

void BM_ConcentratorRoute(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  ft::Rng rng(5);
  ft::PartialConcentrator conc(96, 64, rng);
  std::vector<std::uint32_t> active;
  ft::Rng pick(6);
  std::vector<std::uint32_t> pool(96);
  for (std::uint32_t i = 0; i < 96; ++i) pool[i] = i;
  pick.shuffle(pool);
  active.assign(pool.begin(), pool.begin() + static_cast<long>(k));
  for (auto _ : state) {
    auto out = conc.route(active);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(k));
}
BENCHMARK(BM_ConcentratorRoute)->Arg(8)->Arg(32)->Arg(48);

void BM_Decomposition(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto layout = ft::layout_hypercube(n);
  for (auto _ : state) {
    auto tree = ft::cut_plane_decomposition(layout);
    benchmark::DoNotOptimize(tree.depth());
  }
}
BENCHMARK(BM_Decomposition)->Arg(64)->Arg(256);

void BM_BalancedDecomposition(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto layout = ft::layout_hypercube(n);
  const auto tree = ft::cut_plane_decomposition(layout);
  for (auto _ : state) {
    ft::BalancedDecomposition balanced(tree);
    benchmark::DoNotOptimize(balanced.processor_order().data());
  }
}
BENCHMARK(BM_BalancedDecomposition)->Arg(64)->Arg(256);

void BM_EngineDeliveryCycles(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const bool parallel = state.range(1) != 0;
  ft::FatTreeTopology topo(n);
  const auto caps = ft::CapacityProfile::universal(topo, n / 4);
  ft::Rng gen(9000);
  const auto m = ft::stacked_permutations(n, 4, gen);
  const auto paths = ft::fat_tree_engine_paths(topo, m);
  ft::EngineOptions opts;
  opts.seed = 42;
  opts.parallel = parallel;
  ft::CycleEngine engine(ft::fat_tree_channel_graph(topo, caps), opts);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    cycles += engine.run(paths).cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_EngineDeliveryCycles)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({4096, 0})
    ->Args({4096, 1});

// ---------------------------------------------------------------------------
// BENCH_engine.json: delivery-cycle throughput of the unified engine,
// serial vs parallel, across tree sizes. Hand-rolled timing (best of 3)
// so the output is a small stable JSON file rather than benchmark's full
// reporter format.

struct EngineBenchRow {
  std::uint32_t n = 0;
  const char* mode = "";
  std::uint32_t cycles = 0;
  double seconds = 0.0;
  double cycles_per_sec = 0.0;
};

/// Times serial and parallel mode on one workload with interleaved
/// repetitions (best of 5 each), so both modes sample the same machine
/// noise and the serial/parallel ratio is stable even on a busy host.
std::pair<EngineBenchRow, EngineBenchRow> time_engine(std::uint32_t n) {
  ft::FatTreeTopology topo(n);
  const auto caps = ft::CapacityProfile::universal(topo, n / 4);
  ft::Rng gen(9000 + n);
  const auto m = ft::stacked_permutations(n, 4, gen);
  const auto paths = ft::fat_tree_engine_paths(topo, m);
  const auto graph = ft::fat_tree_channel_graph(topo, caps);

  ft::EngineOptions serial_opts;
  serial_opts.seed = 42;
  ft::EngineOptions parallel_opts = serial_opts;
  parallel_opts.parallel = true;
  ft::CycleEngine serial_engine(graph, serial_opts);
  ft::CycleEngine parallel_engine(graph, parallel_opts);

  EngineBenchRow serial{n, "serial", 0, 1e300, 0.0};
  EngineBenchRow parallel{n, "parallel", 0, 1e300, 0.0};
  const auto measure = [&](ft::CycleEngine& engine, EngineBenchRow& row) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = engine.run(paths);
    const auto t1 = std::chrono::steady_clock::now();
    row.cycles = r.cycles;
    row.seconds =
        std::min(row.seconds, std::chrono::duration<double>(t1 - t0).count());
  };
  for (int rep = 0; rep < 5; ++rep) {
    measure(serial_engine, serial);
    measure(parallel_engine, parallel);
  }
  serial.cycles_per_sec =
      static_cast<double>(serial.cycles) / serial.seconds;
  parallel.cycles_per_sec =
      static_cast<double>(parallel.cycles) / parallel.seconds;
  return {serial, parallel};
}

void write_engine_bench(const char* path) {
  ft::JsonValue doc = ft::JsonValue::object();
  doc["schema"] = "ft.bench_engine/2";
  doc["git_sha"] = ft::build_git_sha();
  doc["timestamp"] = ft::timestamp_utc_iso8601();
  ft::JsonValue& host = doc["host"];
  host = ft::JsonValue::object();
  host["hardware_threads"] = ft::host_hardware_threads();
  ft::JsonValue& benchmarks = doc["benchmarks"];
  benchmarks = ft::JsonValue::array();
  for (const std::uint32_t n : {256u, 1024u, 4096u, 16384u}) {
    const auto [serial, parallel] = time_engine(n);
    for (const EngineBenchRow& row : {serial, parallel}) {
      ft::JsonValue entry = ft::JsonValue::object();
      entry["name"] = "engine_cycles/n=" + std::to_string(row.n) + "/" +
                      row.mode;
      entry["n"] = row.n;
      entry["mode"] = row.mode;
      entry["cycles"] = row.cycles;
      entry["seconds"] = row.seconds;
      entry["cycles_per_sec"] = row.cycles_per_sec;
      benchmarks.push_back(std::move(entry));
      std::cout << "engine n=" << row.n << " " << row.mode << ": "
                << row.cycles_per_sec << " cycles/sec\n";
    }
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return;
  }
  doc.write(out, 2);
  out << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_engine_bench("BENCH_engine.json");
  std::cout << "wrote BENCH_engine.json\n";
  return 0;
}
